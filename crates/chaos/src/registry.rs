//! The process-wide failpoint registry.
//!
//! A *failpoint* is a named hook compiled into a production code path
//! (e.g. `"kv.wal.write"`). At runtime a test arms points through a
//! [`Scenario`]; the instrumented code calls [`hit`] and receives the
//! [`Fault`] to act out, if any. Without the `failpoints` cargo
//! feature, [`hit`] constant-folds to `None` and the registry is dead
//! code — the hooks cost nothing in release builds.
//!
//! Determinism: trigger decisions depend only on the per-point hit
//! counter and (for probabilistic triggers) a seeded RNG, never on
//! wall-clock time or global entropy. The same scenario against the
//! same workload fires the same faults.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault a failpoint inflicts when it fires.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Fail with an injected I/O error of this kind.
    Io(std::io::ErrorKind),
    /// Write only the first `keep` bytes of the buffer, then fail
    /// with `kind` — a torn write, as after power loss mid-append.
    Torn {
        /// Bytes of the buffer that reach the file before the fault.
        keep: usize,
        /// The error kind reported for the lost remainder.
        kind: std::io::ErrorKind,
    },
    /// Sever the connection after `after` more bytes cross it
    /// (net-level; treated like [`Fault::Io`] on files).
    Sever {
        /// Bytes allowed through before the socket is shut down.
        after: usize,
    },
    /// Sleep this long, then proceed normally.
    Delay(Duration),
    /// Panic with this message (exercises supervision paths).
    Panic(String),
}

/// When an armed failpoint actually fires.
#[derive(Debug)]
enum Trigger {
    /// Every hit.
    Always,
    /// Only the `n`-th hit (1-based).
    Nth(u64),
    /// Every hit strictly after the first `n`.
    After(u64),
    /// The first `k` hits.
    Times(u64),
    /// Each hit independently with probability `p`, drawn from an RNG
    /// seeded per point — deterministic for a fixed seed and hit order.
    Probability { p: f64, rng: StdRng },
}

#[derive(Debug)]
struct Point {
    trigger: Trigger,
    fault: Fault,
    hits: u64,
}

#[derive(Default)]
struct Registry {
    points: HashMap<String, Point>,
    /// Cumulative fire counts; survive `Scenario` drop so tests can
    /// assert on them after the run, cleared by the next `setup`.
    fired: HashMap<String, u64>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// `true` when the crate was built with the `failpoints` feature, i.e.
/// when arming a [`Scenario`] can actually inject faults.
#[must_use]
pub const fn is_compiled() -> bool {
    cfg!(feature = "failpoints")
}

/// Consults the registry at a named failpoint. Returns the fault to
/// act out, or `None` (the overwhelmingly common case).
///
/// Compiles to a constant `None` without the `failpoints` feature.
#[inline]
#[must_use]
pub fn hit(name: &str) -> Option<Fault> {
    if !is_compiled() || !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    hit_slow(name)
}

#[cold]
fn hit_slow(name: &str) -> Option<Fault> {
    let mut reg = lock_registry();
    let point = reg.points.get_mut(name)?;
    point.hits += 1;
    let fires = match &mut point.trigger {
        Trigger::Always => true,
        Trigger::Nth(n) => point.hits == *n,
        Trigger::After(n) => point.hits > *n,
        Trigger::Times(k) => point.hits <= *k,
        Trigger::Probability { p, rng } => rng.gen_bool(*p),
    };
    if !fires {
        return None;
    }
    let fault = point.fault.clone();
    *reg.fired.entry(name.to_string()).or_insert(0) += 1;
    Some(fault)
}

/// Acts out a fault at a plain (non-I/O-facade) call site: injected
/// errors return `Err`, delays sleep, panics panic. `Torn` and
/// `Sever` degrade to their error kind — they only make sense inside
/// the file/net facades.
///
/// # Errors
///
/// The injected [`std::io::Error`] when the point fires with an
/// error-carrying fault.
#[inline]
pub fn fail_point(name: &str) -> std::io::Result<()> {
    let Some(fault) = hit(name) else {
        return Ok(());
    };
    match fault {
        Fault::Io(kind) | Fault::Torn { kind, .. } => Err(std::io::Error::new(
            kind,
            format!("injected fault at {name}"),
        )),
        Fault::Sever { .. } => Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            format!("injected sever at {name}"),
        )),
        Fault::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        Fault::Panic(msg) => panic!("injected panic at {name}: {msg}"),
    }
}

/// Times the failpoint `name` has fired since the last
/// [`Scenario::setup`].
#[must_use]
pub fn fired(name: &str) -> u64 {
    lock_registry().fired.get(name).copied().unwrap_or(0)
}

/// Total faults fired across all failpoints since the last
/// [`Scenario::setup`]. Zero in builds without the `failpoints`
/// feature — callers may surface this unconditionally in metrics.
#[must_use]
pub fn total_fired() -> u64 {
    if !is_compiled() {
        return 0;
    }
    lock_registry().fired.values().sum()
}

fn scenario_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// An armed fault-injection scenario.
///
/// Holding a `Scenario` serializes chaos tests process-wide (the
/// registry is global state): `setup` blocks until any previous
/// scenario drops, then clears all points and counters. Dropping the
/// scenario disarms every point, so un-instrumented tests running
/// concurrently are never affected.
#[must_use = "faults are disarmed when the Scenario drops"]
pub struct Scenario {
    _guard: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario").finish_non_exhaustive()
    }
}

impl Scenario {
    /// Starts a fresh scenario: waits for exclusive ownership of the
    /// registry, clears all previously armed points and counters, and
    /// enables fault lookups.
    pub fn setup() -> Self {
        let guard = scenario_lock()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        {
            let mut reg = lock_registry();
            reg.points.clear();
            reg.fired.clear();
        }
        crate::vfs::reset_sync_tracking();
        ENABLED.store(true, Ordering::SeqCst);
        Scenario { _guard: guard }
    }

    fn arm(&self, name: &str, trigger: Trigger, fault: Fault) -> &Self {
        lock_registry().points.insert(
            name.to_string(),
            Point {
                trigger,
                fault,
                hits: 0,
            },
        );
        self
    }

    /// Arms `name` to fire on every hit.
    pub fn fail(&self, name: &str, fault: Fault) -> &Self {
        self.arm(name, Trigger::Always, fault)
    }

    /// Arms `name` to fire on exactly the `n`-th hit (1-based).
    pub fn fail_nth(&self, name: &str, n: u64, fault: Fault) -> &Self {
        self.arm(name, Trigger::Nth(n), fault)
    }

    /// Arms `name` to fire on every hit after the first `n`.
    pub fn fail_after(&self, name: &str, n: u64, fault: Fault) -> &Self {
        self.arm(name, Trigger::After(n), fault)
    }

    /// Arms `name` to fire on the first `k` hits only.
    pub fn fail_times(&self, name: &str, k: u64, fault: Fault) -> &Self {
        self.arm(name, Trigger::Times(k), fault)
    }

    /// Arms `name` to fire each hit independently with probability
    /// `p`, using an RNG seeded with `seed` — same seed, same
    /// workload, same faults.
    pub fn fail_with_probability(&self, name: &str, p: f64, seed: u64, fault: Fault) -> &Self {
        self.arm(
            name,
            Trigger::Probability {
                p,
                rng: StdRng::seed_from_u64(seed),
            },
            fault,
        )
    }

    /// Disarms a single point mid-scenario (e.g. after the recovery
    /// phase of a kill-and-reopen loop).
    pub fn clear(&self, name: &str) -> &Self {
        lock_registry().points.remove(name);
        self
    }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        lock_registry().points.clear();
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    #[test]
    fn disarmed_points_never_fire() {
        let _s = Scenario::setup();
        assert!(hit("registry.nothing-armed").is_none());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let s = Scenario::setup();
        s.fail_nth("registry.nth", 3, Fault::Io(ErrorKind::Other));
        let fired: Vec<bool> = (0..5).map(|_| hit("registry.nth").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(super::fired("registry.nth"), 1);
    }

    #[test]
    fn after_trigger_fires_from_then_on() {
        let s = Scenario::setup();
        s.fail_after("registry.after", 2, Fault::Io(ErrorKind::Other));
        let fired: Vec<bool> = (0..4).map(|_| hit("registry.after").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, true]);
    }

    #[test]
    fn probability_is_deterministic_for_a_seed() {
        let pattern = |seed: u64| -> Vec<bool> {
            let s = Scenario::setup();
            s.fail_with_probability("registry.prob", 0.5, seed, Fault::Io(ErrorKind::Other));
            (0..64).map(|_| hit("registry.prob").is_some()).collect()
        };
        assert_eq!(pattern(7), pattern(7));
        assert_ne!(pattern(7), pattern(8), "different seeds should diverge");
    }

    #[test]
    fn drop_disarms_everything() {
        {
            let s = Scenario::setup();
            s.fail("registry.drop", Fault::Io(ErrorKind::Other));
            assert!(hit("registry.drop").is_some());
        }
        assert!(hit("registry.drop").is_none());
    }

    #[test]
    fn fail_point_returns_injected_error() {
        let s = Scenario::setup();
        s.fail("registry.fp", Fault::Io(ErrorKind::PermissionDenied));
        let err = fail_point("registry.fp").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::PermissionDenied);
        assert!(fail_point("registry.unarmed").is_ok());
    }
}
