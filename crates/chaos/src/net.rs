//! Net-level faults: a `TcpStream` wrapper whose reads and writes
//! pass through failpoints.
//!
//! A [`ChaosStream`] constructed with point prefix `"net.server"`
//! consults `"net.server.recv"` before each read and
//! `"net.server.send"` before each write. [`Fault::Sever`] lets the
//! armed number of bytes through, then shuts the socket down in both
//! directions and reports `ConnectionReset` — a partition cut at an
//! exact byte boundary.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};

use crate::registry::{hit, Fault};

/// A `TcpStream` whose I/O consults failpoints. Transparent when no
/// scenario is armed (or the `failpoints` feature is off).
#[derive(Debug)]
pub struct ChaosStream {
    inner: TcpStream,
    recv_point: String,
    send_point: String,
}

impl ChaosStream {
    /// Wraps `inner`, consulting failpoints `"<point>.recv"` and
    /// `"<point>.send"`.
    #[must_use]
    pub fn new(point: &str, inner: TcpStream) -> Self {
        ChaosStream {
            inner,
            recv_point: format!("{point}.recv"),
            send_point: format!("{point}.send"),
        }
    }

    /// The wrapped stream (for timeouts, peer addresses, shutdown).
    #[must_use]
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }

    fn sever(&self) -> io::Error {
        let _ = self.inner.shutdown(Shutdown::Both);
        io::Error::new(io::ErrorKind::ConnectionReset, "injected sever")
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match hit(&self.recv_point) {
            None => {}
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Io(kind) | Fault::Torn { kind, .. }) => {
                return Err(io::Error::new(
                    kind,
                    format!("injected fault at {}", self.recv_point),
                ));
            }
            Some(Fault::Sever { after }) => {
                // Allow a bounded prefix through, then cut the socket.
                let take = after.min(buf.len());
                if take > 0 {
                    let n = self.inner.read(&mut buf[..take])?;
                    if n > 0 {
                        return Ok(n);
                    }
                }
                return Err(self.sever());
            }
            Some(Fault::Panic(msg)) => panic!("injected panic at {}: {msg}", self.recv_point),
        }
        self.inner.read(buf)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match hit(&self.send_point) {
            None => {}
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Io(kind)) => {
                return Err(io::Error::new(
                    kind,
                    format!("injected fault at {}", self.send_point),
                ));
            }
            Some(Fault::Torn { keep, kind }) => {
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                return Err(io::Error::new(
                    kind,
                    format!("injected torn send at {}", self.send_point),
                ));
            }
            Some(Fault::Sever { after }) => {
                let keep = after.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    let _ = self.inner.flush();
                }
                return Err(self.sever());
            }
            Some(Fault::Panic(msg)) => panic!("injected panic at {}: {msg}", self.send_point),
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::registry::Scenario;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn sever_cuts_the_send_at_a_byte_boundary() {
        let s = Scenario::setup();
        s.fail_nth("net.test.send", 1, Fault::Sever { after: 4 });
        let (client, mut server) = pair();
        let mut chaos = ChaosStream::new("net.test", client);
        let err = chaos.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The receiving side sees exactly the allowed prefix, then EOF.
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"0123");
    }

    #[test]
    fn transparent_when_unarmed() {
        let _s = Scenario::setup();
        let (client, mut server) = pair();
        let mut chaos = ChaosStream::new("net.test", client);
        chaos.write_all(b"hello").unwrap();
        let mut got = [0u8; 5];
        server.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello");
    }
}
