//! The chaos I/O facade: files whose writes and syncs consult
//! failpoints, plus directory-fsync and crash-simulation helpers.
//!
//! A [`ChaosFile`] wraps an [`fs::File`] and is constructed with a
//! *point prefix* (e.g. `"kv.wal"`). Writes consult `"<prefix>.write"`
//! and syncs `"<prefix>.sync"`, so a scenario can tear a specific
//! store's append or fail its fsync without touching anything else.
//!
//! The facade also tracks, per path, how many bytes have actually been
//! synced. [`simulate_crash`] truncates a file back to its last synced
//! length — the on-disk state a power loss would leave behind — so
//! kill-and-reopen tests can assert that exactly the acked-durable
//! prefix survives.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::registry::{hit, Fault};

/// Failpoint consulted by [`fsync_dir`] for every directory fsync.
pub const DIR_SYNC_POINT: &str = "fs.dirsync";

fn synced_map() -> &'static Mutex<HashMap<PathBuf, u64>> {
    static MAP: OnceLock<Mutex<HashMap<PathBuf, u64>>> = OnceLock::new();
    MAP.get_or_init(Mutex::default)
}

fn lock_synced() -> MutexGuard<'static, HashMap<PathBuf, u64>> {
    synced_map().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears the per-path synced-length tracking (called by
/// `Scenario::setup` so scenarios do not see stale entries).
pub(crate) fn reset_sync_tracking() {
    if crate::is_compiled() {
        lock_synced().clear();
    }
}

fn track_synced(path: &Path, len: u64) {
    if crate::is_compiled() {
        lock_synced().insert(path.to_path_buf(), len);
    }
}

/// Truncates `path` to its last synced length, simulating the state a
/// power loss would leave (everything after the last fsync is gone).
/// Bytes present when the file was first wrapped count as synced.
///
/// # Errors
///
/// `InvalidInput` when the path was never wrapped in a [`ChaosFile`]
/// during the current scenario; I/O failures from the truncation.
pub fn simulate_crash(path: &Path) -> io::Result<()> {
    let synced = lock_synced().get(path).copied().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("simulate_crash: {path:?} is not tracked by any ChaosFile"),
        )
    })?;
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(synced)?;
    Ok(())
}

/// A file handle whose writes and syncs pass through failpoints.
///
/// With the `failpoints` feature off (or no scenario armed) every
/// operation forwards straight to the inner [`fs::File`].
#[derive(Debug)]
pub struct ChaosFile {
    file: fs::File,
    path: PathBuf,
    write_point: String,
    sync_point: String,
    /// Bytes written through this handle plus whatever the file held
    /// when wrapped.
    written: u64,
    /// High-water mark of `written` covered by a successful sync.
    synced: u64,
}

impl ChaosFile {
    /// Wraps an already-opened `file` living at `path`, consulting
    /// failpoints `"<point>.write"` and `"<point>.sync"`. The file's
    /// current length counts as synced (it predates this handle).
    ///
    /// # Errors
    ///
    /// I/O failures reading the file's length.
    pub fn new(point: &str, path: impl Into<PathBuf>, file: fs::File) -> io::Result<Self> {
        let path = path.into();
        let len = file.metadata()?.len();
        track_synced(&path, len);
        Ok(ChaosFile {
            file,
            path,
            write_point: format!("{point}.write"),
            sync_point: format!("{point}.sync"),
            written: len,
            synced: len,
        })
    }

    /// The path this handle writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes known to be durable (covered by a successful sync or
    /// present before wrapping).
    #[must_use]
    pub fn synced_len(&self) -> u64 {
        self.synced
    }

    /// Writes the whole buffer, acting out any armed fault first.
    ///
    /// # Errors
    ///
    /// Injected faults and real I/O failures.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match hit(&self.write_point) {
            None => {}
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Io(kind)) => {
                return Err(io::Error::new(
                    kind,
                    format!("injected fault at {}", self.write_point),
                ));
            }
            Some(Fault::Torn { keep, kind }) => {
                let keep = keep.min(buf.len());
                self.file.write_all(&buf[..keep])?;
                self.written += keep as u64;
                return Err(io::Error::new(
                    kind,
                    format!("injected torn write at {}", self.write_point),
                ));
            }
            Some(Fault::Sever { after }) => {
                let keep = after.min(buf.len());
                self.file.write_all(&buf[..keep])?;
                self.written += keep as u64;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected sever at {}", self.write_point),
                ));
            }
            Some(Fault::Panic(msg)) => {
                panic!("injected panic at {}: {msg}", self.write_point)
            }
        }
        self.file.write_all(buf)?;
        self.written += buf.len() as u64;
        Ok(())
    }

    /// Flushes userspace buffers (a no-op for `fs::File`, kept for
    /// drop-in compatibility).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn sync_inner(&mut self, data_only: bool) -> io::Result<()> {
        match hit(&self.sync_point) {
            None => {}
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Io(kind) | Fault::Torn { kind, .. }) => {
                // A failed fsync leaves durability unknown; we model
                // the pessimistic case — nothing new became durable.
                return Err(io::Error::new(
                    kind,
                    format!("injected fault at {}", self.sync_point),
                ));
            }
            Some(Fault::Sever { .. }) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected sever at {}", self.sync_point),
                ));
            }
            Some(Fault::Panic(msg)) => panic!("injected panic at {}: {msg}", self.sync_point),
        }
        if data_only {
            self.file.sync_data()?;
        } else {
            self.file.sync_all()?;
        }
        self.synced = self.written;
        track_synced(&self.path, self.synced);
        Ok(())
    }

    /// `fsync`s file data (durability barrier for appends).
    ///
    /// # Errors
    ///
    /// Injected faults and real I/O failures.
    pub fn sync_data(&mut self) -> io::Result<()> {
        self.sync_inner(true)
    }

    /// `fsync`s file data and metadata.
    ///
    /// # Errors
    ///
    /// Injected faults and real I/O failures.
    pub fn sync_all(&mut self) -> io::Result<()> {
        self.sync_inner(false)
    }
}

impl Write for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        ChaosFile::flush(self)
    }
}

/// `fsync`s a directory so renames and newly created files in it
/// survive a crash (no-op on non-Unix platforms, where directories
/// cannot be opened for syncing). Consults [`DIR_SYNC_POINT`].
///
/// # Errors
///
/// Injected faults and real I/O failures.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    crate::registry::fail_point(DIR_SYNC_POINT)?;
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::registry::Scenario;
    use std::io::ErrorKind;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strata-chaos-vfs-{tag}-{}", std::process::id()))
    }

    fn open_append(path: &Path) -> ChaosFile {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        ChaosFile::new("vfs.test", path, file).unwrap()
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let s = Scenario::setup();
        let path = temp_path("torn");
        let _ = fs::remove_file(&path);
        let mut f = open_append(&path);
        f.write_all(b"durable!").unwrap();
        s.fail_nth(
            "vfs.test.write",
            1,
            Fault::Torn {
                keep: 3,
                kind: ErrorKind::WriteZero,
            },
        );
        let err = f.write_all(b"lost-tail").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WriteZero);
        drop(f);
        assert_eq!(fs::read(&path).unwrap(), b"durable!los");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_sync_surfaces_and_crash_truncates_to_synced() {
        let s = Scenario::setup();
        let path = temp_path("sync");
        let _ = fs::remove_file(&path);
        let mut f = open_append(&path);
        f.write_all(b"one").unwrap();
        f.sync_data().unwrap();
        s.fail("vfs.test.sync", Fault::Io(ErrorKind::Other));
        f.write_all(b"two").unwrap();
        assert!(f.sync_data().is_err());
        assert_eq!(f.synced_len(), 3);
        drop(f);
        simulate_crash(&path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn untracked_paths_cannot_crash() {
        let _s = Scenario::setup();
        assert!(simulate_crash(Path::new("/nonexistent/untracked")).is_err());
    }
}
