//! Umbrella crate for the STRATA reproduction workspace.
//!
//! This crate only re-exports the workspace members so that the
//! repository-level `examples/` and `tests/` can reach every crate
//! through a single dependency. The actual functionality lives in:
//!
//! * [`strata`] — the STRATA framework (the paper's contribution),
//! * [`strata_spe`] — the stream processing engine substrate,
//! * [`strata_pubsub`] — the pub/sub substrate,
//! * [`strata_kv`] — the key-value store substrate,
//! * [`strata_cluster`] — DBSCAN and baseline clustering,
//! * [`strata_amsim`] — the PBF-LB machine / OT sensor simulator.

pub use strata;
pub use strata_amsim;
pub use strata_cluster;
pub use strata_kv;
pub use strata_pubsub;
pub use strata_spe;
