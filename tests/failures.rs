//! Failure injection: how STRATA behaves when user functions panic,
//! sources fail, topics disappear, or pipelines are mis-composed.

use std::sync::Arc;
use std::time::Duration;

use strata::collector::OtImageCollector;
use strata::{AmTuple, Error, Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};
use strata_spe::{Source, SourceContext};

fn machine() -> Arc<PbfLbMachine> {
    Arc::new(PbfLbMachine::new(MachineConfig::paper_build(31).image_px(120).timing(10, 2)).unwrap())
}

#[test]
fn panicking_user_function_surfaces_at_join() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("panics");
    let ot = pipeline.add_source("ot", OtImageCollector::new(machine()).layers(0..3));
    let bad = pipeline.detect_event("bad", &ot, |tuple: &AmTuple| {
        assert!(tuple.metadata().layer < 1, "boom at layer 1");
        Some(vec![tuple.derive()])
    });
    let _rx = pipeline.deliver("expert", &bad);
    let running = pipeline.deploy().unwrap();
    let err = running.join().unwrap_err();
    assert!(matches!(
        err,
        Error::Spe(strata_spe::Error::OperatorPanicked { .. })
    ));
}

#[test]
fn failing_source_surfaces_at_join() {
    struct Broken;
    impl Source for Broken {
        type Out = AmTuple;
        fn run(&mut self, _ctx: &mut SourceContext<AmTuple>) -> Result<(), String> {
            Err("OT sensor unplugged".into())
        }
    }
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("broken-source");
    let s = pipeline.add_source("ot", Broken);
    let _rx = pipeline.deliver("expert", &s);
    let running = pipeline.deploy().unwrap();
    let err = running.join().unwrap_err();
    assert!(err.to_string().contains("OT sensor unplugged"), "{err}");
}

#[test]
fn empty_pipeline_is_rejected() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let pipeline = strata.pipeline("empty");
    assert!(matches!(pipeline.deploy(), Err(Error::InvalidPipeline(_))));
}

#[test]
fn pipeline_without_delivery_is_rejected() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("no-delivery");
    let _ = pipeline.add_source("ot", OtImageCollector::new(machine()).layers(0..1));
    assert!(matches!(
        pipeline.deploy(),
        Err(Error::InvalidPipeline(msg)) if msg.contains("deliver")
    ));
}

#[test]
fn correlate_requires_an_event_stream() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("bad-order");
    let ot = pipeline.add_source("ot", OtImageCollector::new(machine()).layers(0..1));
    // correlateEvents directly on a raw source: Table 1 says the
    // input must come from detectEvent.
    let out = pipeline.correlate_events("out", &ot, 5, |_w| Vec::new());
    let _rx = pipeline.deliver("expert", &out);
    assert!(matches!(
        pipeline.deploy(),
        Err(Error::InvalidPipeline(msg)) if msg.contains("detectEvent")
    ));
}

#[test]
fn unseeded_thresholds_fail_loudly_not_silently() {
    // The use-case's cell classifier must panic (worker → join error)
    // when the historical thresholds were never stored, rather than
    // silently classifying everything as regular.
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let m = machine();
    let mut pipeline = strata.pipeline("no-thresholds");
    let ot = pipeline.add_source("ot", OtImageCollector::new(Arc::clone(&m)).layers(0..1));
    let pp = pipeline.add_source(
        "pp",
        strata::collector::PrintingParameterCollector::new(m).layers(0..1),
    );
    let fused = pipeline.fuse("OT&pp", &ot, &pp);
    let spec = pipeline.partition(
        "spec",
        &fused,
        strata::usecase::thermal::isolate_specimen(250.0),
    );
    let cells = pipeline.partition(
        "cell",
        &spec,
        strata::usecase::thermal::isolate_cell(&strata, 10),
    );
    let _rx = pipeline.deliver("expert", &cells);
    let running = pipeline.deploy().unwrap();
    let err = running.join().unwrap_err();
    assert!(matches!(
        err,
        Error::Spe(strata_spe::Error::OperatorPanicked { .. })
    ));
}

#[test]
fn stop_during_a_live_job_shuts_down_cleanly() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let m = Arc::new(
        PbfLbMachine::new(MachineConfig::paper_build(32).image_px(120).timing(50, 10)).unwrap(),
    );
    let mut pipeline = strata.pipeline("stoppable");
    // Live pacing over the whole 575-layer build: must be interruptible.
    let ot = pipeline.add_source("ot", OtImageCollector::new(m).paced(1.0));
    let events = pipeline.detect_event("all", &ot, |t: &AmTuple| Some(vec![t.derive()]));
    let rx = pipeline.deliver("expert", &events);
    let running = pipeline.deploy().unwrap();
    // Wait for proof of life, then stop mid-print.
    let first = rx.recv_timeout(Duration::from_secs(30));
    assert!(first.is_ok(), "pipeline produced something");
    let started = std::time::Instant::now();
    running.shutdown().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must not wait for the whole job"
    );
}

#[test]
fn deleting_a_connector_topic_fails_the_subscriber() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let m = Arc::new(
        PbfLbMachine::new(MachineConfig::paper_build(33).image_px(120).timing(50, 10)).unwrap(),
    );
    let mut pipeline = strata.pipeline("topic-vanishes");
    let ot = pipeline.add_source("ot", OtImageCollector::new(m).paced(1.0));
    let rx = pipeline.deliver("expert", &ot);
    let running = pipeline.deploy().unwrap();
    assert!(rx.recv_timeout(Duration::from_secs(30)).is_ok());
    // Sabotage: delete the raw connector topic while running.
    for topic in strata.broker().topics() {
        let _ = strata.broker().delete_topic(&topic);
    }
    running.stop();
    let result = running.join();
    // The subscriber's poll fails on the missing topic: surfaced as a
    // source failure (never a hang or a panic).
    assert!(
        matches!(
            result,
            Err(Error::Spe(strata_spe::Error::SourceFailed { .. })) | Ok(_)
        ),
        "unexpected outcome: {result:?}"
    );
}
