//! Integration: connector modes (pub/sub vs direct), multi-pipeline
//! sharing, and key-value persistence across STRATA instances.

use std::sync::Arc;
use std::time::Duration;

use strata::collector::OtImageCollector;
use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{AmTuple, ConnectorMode, Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};

fn machine(job: u32) -> Arc<PbfLbMachine> {
    Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(job)
                .image_px(800)
                .timing(40, 5)
                // Start at the gas-flow-parallel orientation so the very
                // first stack already carries defects (the tests only
                // process the first few layers).
                .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
                .defect_rate(2.0),
        )
        .unwrap(),
    )
}

fn summaries_with(mode: ConnectorMode, job: u32) -> Vec<(u32, Option<u32>, i64)> {
    let strata = Strata::new(StrataConfig::default().connector_mode(mode.clone())).unwrap();
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        machine(job),
        ThermalPipelineOptions {
            cell_px: 8,
            depth_l: 5,
            layers: 0..6,
            ..ThermalPipelineOptions::default()
        },
    )
    .unwrap();
    let mut out = Vec::new();
    while let Ok(report) = reports.recv_timeout(Duration::from_secs(60)) {
        if report.tuple.payload().str("report") == Some("summary") {
            out.push((
                report.tuple.metadata().layer,
                report.tuple.metadata().specimen,
                report.tuple.payload().int("event_count").unwrap_or(0),
            ));
            if out.len() >= 5 {
                break;
            }
        }
    }
    running.shutdown().unwrap();
    out.sort();
    out
}

#[test]
fn pubsub_and_direct_modes_compute_the_same_results() {
    let pubsub = summaries_with(ConnectorMode::PubSub, 21);
    let direct = summaries_with(ConnectorMode::Direct, 21);
    assert!(!pubsub.is_empty());
    assert_eq!(pubsub, direct);
}

#[test]
fn two_pipelines_share_one_strata_instance() {
    // Two experts, two pipelines, one broker and store — the paper:
    // "distinct pipelines from one or more users can overlap".
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let m = machine(22);

    let deploy_simple = |name: &str, threshold: u8| {
        let mut pipeline = strata.pipeline(name);
        let ot = pipeline.add_source("ot", OtImageCollector::new(Arc::clone(&m)).layers(0..4));
        let events = pipeline.detect_event("count", &ot, move |tuple: &AmTuple| {
            let image = tuple.payload().image("image")?;
            let n = image.pixels().iter().filter(|&&p| p > threshold).count();
            let mut out = tuple.derive();
            out.payload_mut().set_int("count", n as i64);
            Some(vec![out])
        });
        let rx = pipeline.deliver("expert", &events);
        (pipeline.deploy().unwrap(), rx)
    };

    let (run_a, rx_a) = deploy_simple("expert-a", 100);
    let (run_b, rx_b) = deploy_simple("expert-b", 200);

    let collect = |rx: crossbeam::channel::Receiver<strata::ExpertReport>| {
        (0..4)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(60))
                    .expect("report arrives")
                    .tuple
                    .payload()
                    .int("count")
                    .unwrap()
            })
            .collect::<Vec<_>>()
    };
    let counts_a = collect(rx_a);
    let counts_b = collect(rx_b);
    run_a.shutdown().unwrap();
    run_b.shutdown().unwrap();
    // The looser threshold necessarily counts at least as many pixels.
    for (a, b) in counts_a.iter().zip(&counts_b) {
        assert!(a >= b, "threshold 100 ({a}) ≥ threshold 200 ({b})");
    }
    assert!(counts_a.iter().any(|&c| c > 0));
}

#[test]
fn kv_store_persists_across_strata_instances() {
    let dir = std::env::temp_dir().join(format!("strata-int-kv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let strata = Strata::new(StrataConfig::default().kv_dir(&dir)).unwrap();
        thermal::seed_thresholds(
            &strata,
            thermal::reference_thresholds(&strata_amsim::ThermalModel::default()),
        )
        .unwrap();
    }
    let strata = Strata::new(StrataConfig::default().kv_dir(&dir)).unwrap();
    let loaded = thermal::load_thresholds(&strata).unwrap();
    assert!(loaded.pixel_very_cold < loaded.pixel_very_warm);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn raw_connector_topics_are_externally_replayable() {
    // A third party can subscribe to the raw connector topic and
    // replay what the collector published — the decoupling the
    // pub/sub architecture buys.
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let m = machine(23);
    let mut pipeline = strata.pipeline("replayable");
    let ot = pipeline.add_source("ot", OtImageCollector::new(Arc::clone(&m)).layers(0..3));
    let rx = pipeline.deliver("expert", &ot);
    let running = pipeline.deploy().unwrap();
    let mut seen = 0;
    while seen < 3 {
        if rx.recv_timeout(Duration::from_secs(60)).is_ok() {
            seen += 1;
        } else {
            break;
        }
    }
    running.shutdown().unwrap();

    // Find the raw topic and replay it from offset 0.
    let topics = strata.broker().topics();
    let raw_topic = topics
        .iter()
        .find(|t| t.contains(".raw.ot"))
        .expect("raw connector topic exists");
    let mut consumer = strata
        .broker()
        .consumer("external-replayer", &[raw_topic])
        .unwrap();
    let mut tuples = 0;
    loop {
        let records = consumer.poll(Duration::from_millis(200)).unwrap();
        if records.is_empty() {
            break;
        }
        for record in records {
            if let strata::codec::ConnectorMessage::Tuple(t) =
                strata::codec::decode(&record.record.value).unwrap()
            {
                assert!(t.payload().image("image").is_some());
                tuples += 1;
            }
        }
    }
    assert_eq!(tuples, 3, "all published layers are replayable");
}
