//! Integration: the geometry/recoater use-case detects injected
//! faults and stays silent on clean builds.

use std::sync::Arc;
use std::time::Duration;

use strata::collector::{OtImageCollector, PrintingParameterCollector};
use strata::usecase::geometry::{footprint_monitor, streak_detector, GeometryOptions};
use strata::usecase::thermal::isolate_specimen;
use strata::{ExpertReport, Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine, RecoaterStreak};

fn run_watch(machine: Arc<PbfLbMachine>, layers: u32) -> (Vec<ExpertReport>, Vec<ExpertReport>) {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("geometry");
    let ot = pipeline.add_source(
        "OT",
        OtImageCollector::new(Arc::clone(&machine)).layers(0..layers),
    );
    let pp = pipeline.add_source(
        "pp",
        PrintingParameterCollector::new(Arc::clone(&machine)).layers(0..layers),
    );
    let fused = pipeline.fuse("OT&pp", &ot, &pp);
    let plate = machine.plan().plate_mm();
    let streaks = pipeline.detect_event(
        "streaks",
        &fused,
        streak_detector(plate, GeometryOptions::default()),
    );
    let spec = pipeline.partition("spec", &fused, isolate_specimen(plate));
    let footprints = pipeline.detect_event(
        "footprints",
        &spec,
        footprint_monitor(GeometryOptions::default()),
    );
    let streak_rx = pipeline.deliver("streak-expert", &streaks);
    let footprint_rx = pipeline.deliver("footprint-expert", &footprints);
    let running = pipeline.deploy().unwrap();
    let collect = |rx: crossbeam::channel::Receiver<ExpertReport>| {
        let mut out = Vec::new();
        while let Ok(r) = rx.recv_timeout(Duration::from_secs(60)) {
            out.push(r);
        }
        out
    };
    let streak_reports = collect(streak_rx);
    let footprint_reports = collect(footprint_rx);
    running.join().unwrap();
    (streak_reports, footprint_reports)
}

fn machine(streak: Option<RecoaterStreak>) -> Arc<PbfLbMachine> {
    let mut config = MachineConfig::paper_build(41)
        .image_px(500)
        .timing(30, 5)
        .defect_rate(0.0); // isolate the geometry fault
    if let Some(streak) = streak {
        config = config.with_streak(streak);
    }
    Arc::new(PbfLbMachine::new(config).unwrap())
}

#[test]
fn injected_streak_is_localized() {
    let streak = RecoaterStreak {
        x_mm: 130.0,
        width_mm: 6.0,
        start_layer: 3,
        layer_span: 100,
        attenuation: 0.35,
    };
    let (streak_reports, footprint_reports) = run_watch(machine(Some(streak)), 8);

    // Streak events only on layers ≥ 3, localized within a couple mm.
    assert!(!streak_reports.is_empty(), "streak must be detected");
    for report in &streak_reports {
        assert!(report.tuple.metadata().layer >= 3);
        let x = report.tuple.payload().float("x_mm").unwrap();
        let w = report.tuple.payload().float("width_mm").unwrap();
        assert!((x - 130.0).abs() < 3.0, "x={x}");
        assert!((w - 6.0).abs() < 3.0, "w={w}");
    }
    let layers_hit: std::collections::BTreeSet<u32> = streak_reports
        .iter()
        .map(|r| r.tuple.metadata().layer)
        .collect();
    assert_eq!(
        layers_hit,
        (3..8).collect(),
        "every affected layer reported"
    );

    // The streak crosses specimens → their footprints under-melt.
    assert!(
        !footprint_reports.is_empty(),
        "streaked specimens must fail the footprint check"
    );
    for report in &footprint_reports {
        assert!(report.tuple.metadata().layer >= 3);
        assert!(report.tuple.payload().float("melted_fraction").unwrap() < 0.97);
    }
}

#[test]
fn clean_build_raises_no_geometry_events() {
    let (streak_reports, footprint_reports) = run_watch(machine(None), 5);
    assert!(streak_reports.is_empty(), "{streak_reports:?}");
    assert!(footprint_reports.is_empty(), "{footprint_reports:?}");
}
