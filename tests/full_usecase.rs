//! Cross-crate integration: the complete Algorithm-1 pipeline
//! (simulator → collectors → connectors → monitor → aggregator →
//! expert) validated against the simulator's ground truth.

use std::sync::Arc;
use std::time::Duration;

use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{ExpertReport, Strata, StrataConfig};
use strata_amsim::{DefectKind, MachineConfig, PbfLbMachine};

fn run_pipeline(
    machine: Arc<PbfLbMachine>,
    options: ThermalPipelineOptions,
    expected_summaries: usize,
) -> Vec<ExpertReport> {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let (running, reports) = thermal::deploy_pipeline(&strata, machine, options).unwrap();
    let mut collected = Vec::new();
    let mut summaries = 0;
    while summaries < expected_summaries {
        match reports.recv_timeout(Duration::from_secs(120)) {
            Ok(report) => {
                if report.tuple.payload().str("report") == Some("summary") {
                    summaries += 1;
                }
                collected.push(report);
            }
            Err(_) => break,
        }
    }
    running.shutdown().unwrap();
    collected
}

#[test]
fn detected_clusters_sit_on_seeded_defects() {
    let machine = Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(11)
                .image_px(1000)
                .timing(40, 5)
                .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
                .defect_rate(1.5),
        )
        .unwrap(),
    );
    let reports = run_pipeline(
        Arc::clone(&machine),
        ThermalPipelineOptions {
            cell_px: 5,
            depth_l: 10,
            layers: 0..10,
            ..ThermalPipelineOptions::default()
        },
        8,
    );
    let clusters: Vec<_> = reports
        .iter()
        .filter(|r| r.tuple.payload().str("report") == Some("cluster"))
        .collect();
    assert!(!clusters.is_empty(), "defects must produce cluster reports");

    // Every reported cluster centroid must lie near a ground-truth
    // defect site of the same specimen that is active in the window.
    let mm_tolerance = 3.0;
    for cluster in &clusters {
        let cx = cluster.tuple.payload().float("centroid_x_mm").unwrap();
        let cy = cluster.tuple.payload().float("centroid_y_mm").unwrap();
        let specimen = cluster.tuple.metadata().specimen.unwrap();
        let near = machine.defects().iter().any(|d| {
            d.specimen == specimen && (d.x_mm - cx).hypot(d.y_mm - cy) < d.radius_mm + mm_tolerance
        });
        assert!(
            near,
            "cluster at ({cx:.1}, {cy:.1}) mm on specimen {specimen} matches no seeded defect"
        );
    }

    // And the defect kinds must be reflected: a hot defect produces
    // hot members somewhere.
    let has_hot_defect = machine
        .defects()
        .iter()
        .any(|d| d.kind == DefectKind::Hot && d.start_layer < 10);
    if has_hot_defect {
        let hot_members: i64 = clusters
            .iter()
            .filter_map(|c| c.tuple.payload().int("hot_members"))
            .sum();
        assert!(hot_members > 0, "hot defects should yield hot members");
    }
}

#[test]
fn a_clean_build_reports_no_clusters() {
    let machine = Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(12)
                .image_px(400)
                .timing(40, 5)
                .defect_rate(0.0), // no seeded defects at all
        )
        .unwrap(),
    );
    let reports = run_pipeline(
        machine,
        ThermalPipelineOptions {
            cell_px: 10,
            depth_l: 10,
            layers: 0..6,
            ..ThermalPipelineOptions::default()
        },
        1,
    );
    let clusters = reports
        .iter()
        .filter(|r| r.tuple.payload().str("report") == Some("cluster"))
        .count();
    assert_eq!(clusters, 0, "clean build must not raise defect clusters");
}

#[test]
fn latency_meets_the_qos_threshold_under_live_pacing() {
    // The paper's headline claim: sub-second latency, well within the
    // 3 s recoat gap. Uses live pacing so no queueing builds up.
    let machine = Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(13)
                .image_px(800)
                .timing(150, 30)
                .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
                .defect_rate(1.5),
        )
        .unwrap(),
    );
    let reports = run_pipeline(
        machine,
        ThermalPipelineOptions {
            cell_px: 10,
            depth_l: 10,
            layers: 0..8,
            pace: 1.0,
            ..ThermalPipelineOptions::default()
        },
        6,
    );
    assert!(!reports.is_empty());
    for report in &reports {
        assert!(
            report.qos_met,
            "latency {:?} violates the 3 s QoS threshold",
            report.latency
        );
    }
}

#[test]
fn parallel_and_serial_monitors_agree() {
    let machine = Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(14)
                .image_px(800)
                .timing(40, 5)
                .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
                .defect_rate(1.5),
        )
        .unwrap(),
    );
    let summarize = |parallelism: usize| {
        let reports = run_pipeline(
            Arc::clone(&machine),
            ThermalPipelineOptions {
                cell_px: 8,
                depth_l: 5,
                layers: 0..6,
                parallelism,
                ..ThermalPipelineOptions::default()
            },
            5,
        );
        let mut events: Vec<(u32, Option<u32>, i64)> = reports
            .iter()
            .filter(|r| r.tuple.payload().str("report") == Some("summary"))
            .map(|r| {
                (
                    r.tuple.metadata().layer,
                    r.tuple.metadata().specimen,
                    r.tuple.payload().int("event_count").unwrap_or(0),
                )
            })
            .collect();
        events.sort();
        events
    };
    assert_eq!(summarize(1), summarize(4));
}

#[test]
fn stable_ids_pipeline_reports_persistent_clusters() {
    let machine = Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(15)
                .image_px(800)
                .timing(40, 5)
                .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 0.0))
                .defect_rate(2.0),
        )
        .unwrap(),
    );
    let reports = run_pipeline(
        Arc::clone(&machine),
        ThermalPipelineOptions {
            cell_px: 8,
            depth_l: 10,
            layers: 0..8,
            stable_ids: true,
            ..ThermalPipelineOptions::default()
        },
        // Several specimens report per layer: budget enough summaries
        // to cover at least four full layers.
        24,
    );
    // Collect tracked ids per (specimen, layer).
    let mut per_specimen: std::collections::HashMap<u32, Vec<(u32, i64)>> = Default::default();
    for r in &reports {
        if r.tuple.payload().str("report") == Some("cluster") {
            let id = r.tuple.payload().int("tracked_id").expect("tracked id");
            per_specimen
                .entry(r.tuple.metadata().specimen.unwrap())
                .or_default()
                .push((r.tuple.metadata().layer, id));
        }
    }
    assert!(!per_specimen.is_empty(), "clusters were reported");
    // At least one specimen shows the same id across several layers —
    // a defect tracked while it grows.
    let persistent = per_specimen.values().any(|entries| {
        let mut by_id: std::collections::HashMap<i64, std::collections::BTreeSet<u32>> =
            Default::default();
        for (layer, id) in entries {
            by_id.entry(*id).or_default().insert(*layer);
        }
        by_id.values().any(|layers| layers.len() >= 3)
    });
    assert!(
        persistent,
        "some cluster identity persists across ≥3 layers"
    );
}
