//! End-to-end transport test: a networked broker on an ephemeral
//! loopback port, a producer thread streaming records while a remote
//! consumer in another thread loses its connection mid-stream. After
//! the reconnect the consumer must resume from its last committed
//! offsets and deliver every record exactly once.

use std::collections::HashMap;
use std::thread;
use std::time::Duration;

use strata_net::{BrokerServer, RemoteConsumer, RemoteProducer};
use strata_pubsub::Broker;

const PARTITIONS: u32 = 3;
const RECORDS: u64 = 240;

#[test]
fn remote_consumer_resumes_exactly_once_after_disconnect() {
    let mut server = BrokerServer::bind("127.0.0.1:0", Broker::new()).expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut admin = RemoteProducer::connect(&addr).expect("admin connect");
    admin
        .client_mut()
        .create_topic("melt.pool", PARTITIONS)
        .expect("create topic");

    // Producer thread: keyed records trickle in while the consumer is
    // busy disconnecting and resuming on the other side.
    let producer_addr = addr.clone();
    let producer = thread::spawn(move || {
        let mut producer = RemoteProducer::connect(&producer_addr).expect("producer connect");
        for seq in 0..RECORDS {
            let key = format!("machine-{}", seq % 7);
            producer
                .send(
                    "melt.pool",
                    Some(key.as_bytes()),
                    seq.to_le_bytes().to_vec(),
                )
                .expect("produce");
            if seq % 48 == 0 {
                thread::sleep(Duration::from_millis(5));
            }
        }
    });

    let consumer_addr = addr.clone();
    let consumer = thread::spawn(move || {
        let mut consumer = RemoteConsumer::connect(&consumer_addr, "qa", &["melt.pool"])
            .expect("consumer connect");
        consumer.set_max_poll_records(16);

        // (partition, offset) → payload sequence number. Duplicate
        // delivery would overwrite an entry and shrink the map, so we
        // count arrivals separately.
        let mut by_slot: HashMap<(u32, u64), u64> = HashMap::new();
        let mut arrivals = 0u64;
        let mut dropped = 0;
        let mut idle_polls = 0;
        while arrivals < RECORDS && idle_polls < 200 {
            let batch = consumer
                .poll(Duration::from_millis(50))
                .expect("poll survives reconnects");
            if batch.is_empty() {
                idle_polls += 1;
            } else {
                idle_polls = 0;
            }
            for polled in batch {
                let mut seq = [0u8; 8];
                seq.copy_from_slice(&polled.record.value);
                by_slot.insert((polled.partition, polled.offset), u64::from_le_bytes(seq));
                arrivals += 1;
            }
            // Checkpoint, then tear the TCP connection down a few
            // times mid-stream: the next poll must reconnect and
            // resume from exactly these committed offsets.
            consumer.commit().expect("commit positions");
            if dropped < 3 && arrivals >= (dropped + 1) * 60 {
                consumer.client_mut().drop_connection_for_test();
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3, "test must actually exercise reconnects");
        (by_slot, arrivals)
    });

    producer.join().expect("producer thread");
    let (by_slot, arrivals) = consumer.join().expect("consumer thread");

    // Exactly once: every record arrived (all sequence numbers are
    // present) and none arrived twice (arrival count equals the
    // number of distinct (partition, offset) slots).
    assert_eq!(arrivals, RECORDS, "every record must be delivered");
    assert_eq!(
        by_slot.len() as u64,
        RECORDS,
        "no record may be delivered twice"
    );
    let mut seqs: Vec<u64> = by_slot.values().copied().collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..RECORDS).collect::<Vec<_>>());

    // Offsets within each partition are contiguous from zero — the
    // resume logic never skipped or replayed a slot.
    let mut per_partition: HashMap<u32, Vec<u64>> = HashMap::new();
    for (partition, offset) in by_slot.keys() {
        per_partition.entry(*partition).or_default().push(*offset);
    }
    for (partition, mut offsets) in per_partition {
        offsets.sort_unstable();
        assert_eq!(
            offsets,
            (0..offsets.len() as u64).collect::<Vec<_>>(),
            "partition {partition} offsets must be gapless"
        );
    }

    // The committed positions on the server match what was consumed:
    // a successor consumer in the same group starts at the end.
    let mut successor =
        RemoteConsumer::connect(&addr, "qa", &["melt.pool"]).expect("successor connect");
    let tail = successor
        .poll(Duration::from_millis(100))
        .expect("successor poll");
    assert!(
        tail.is_empty(),
        "a same-group successor must resume past all committed records, got {}",
        tail.len()
    );

    server.shutdown();
}
