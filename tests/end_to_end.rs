//! End-to-end observability: one full amsim → pubsub → spe → cluster
//! → kv run, validated *through its metrics*. Flow conservation is
//! checked node by node from the `spe_node_*` counters, the broker's
//! byte accounting and the store's operation counters are read from
//! the same Prometheus dump an operator would scrape, and the dump is
//! also fetched over TCP via the net protocol's `Metrics` request.

use std::sync::Arc;
use std::time::Duration;

use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{ConnectorMode, ExpertReport, Strata, StrataConfig, Value};
use strata_amsim::{MachineConfig, PbfLbMachine};
use strata_net::{BrokerClient, BrokerServer};
use strata_spe::QueryMetrics;

/// The value of the series whose `name{labels}` part equals `series`
/// exactly (no `#` comment lines match, since they contain spaces).
fn metric_value(text: &str, series: &str) -> Option<u64> {
    text.lines()
        .find_map(|line| line.strip_prefix(series)?.strip_prefix(' '))
        .and_then(|value| value.parse().ok())
}

/// Sum of every series of `family` across its label sets.
fn family_sum(text: &str, family: &str) -> u64 {
    text.lines()
        .filter(|line| {
            line.strip_prefix(family)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .filter_map(|line| line.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

fn small_machine(seed: u32) -> Arc<PbfLbMachine> {
    Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(seed)
                .image_px(400)
                .timing(40, 5)
                .defect_rate(2.0),
        )
        .unwrap(),
    )
}

fn items_in(query: &QueryMetrics, node: &str) -> u64 {
    query.node(node).expect(node).items_in()
}

fn items_out(query: &QueryMetrics, node: &str) -> u64 {
    query.node(node).expect(node).items_out()
}

#[test]
fn full_pipeline_conserves_flow_and_exposes_unified_metrics() {
    const LAYERS: u64 = 8;
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        small_machine(9),
        ThermalPipelineOptions {
            cell_px: 4,
            depth_l: 10,
            layers: 0..LAYERS as u32,
            ..ThermalPipelineOptions::default()
        },
    )
    .unwrap();
    // `deploy_pipeline` seeds the thresholds, so some puts exist
    // already; everything the expert stores below is counted on top.
    let baseline_puts = metric_value(&strata.metrics_text(), "kv_put_ns_count").unwrap();

    // Drain the expert channel until the finite pipeline ends, acting
    // on each report: persist it, closing the loop back into kv.
    let mut stored = 0u64;
    while let Ok(report) = reports.recv_timeout(Duration::from_secs(120)) {
        let kind = report.tuple.payload().str("report").unwrap_or("unknown");
        strata.store(format!("reports/{stored:06}"), kind).unwrap();
        stored += 1;
    }
    assert!(stored > 0, "the pipeline delivered reports");
    let metrics = running.join().unwrap();
    let query = |name: &str| {
        metrics
            .iter()
            .find(|m| m.query() == name)
            .unwrap_or_else(|| panic!("query {name} deployed"))
    };
    let collector = query("thermal.collector");
    let monitor = query("thermal.monitor");
    let aggregator = query("thermal.aggregator");

    // Conservation along the pipeline, one hop at a time. Within a
    // query, a node's intake is its upstream's output; across the
    // connector topics, what one module published is exactly what the
    // next module's subscription emitted.
    assert_eq!(items_out(collector, "OT"), LAYERS, "one OT image per layer");
    assert_eq!(items_out(collector, "pp"), LAYERS);
    for source in ["raw.OT", "raw.pp"] {
        assert_eq!(
            items_in(collector, &format!("publish.{source}")),
            items_out(collector, source.strip_prefix("raw.").unwrap()),
            "collector publishes every {source} tuple"
        );
        assert_eq!(
            items_out(monitor, &format!("subscribe.{source}")),
            items_in(collector, &format!("publish.{source}")),
            "{source} crosses the raw-data connector losslessly"
        );
    }
    assert_eq!(
        items_in(monitor, "OT&pp"),
        items_out(monitor, "subscribe.raw.OT") + items_out(monitor, "subscribe.raw.pp")
    );
    assert_eq!(items_in(monitor, "spec"), items_out(monitor, "OT&pp"));
    assert_eq!(items_in(monitor, "cell"), items_out(monitor, "spec"));
    assert_eq!(items_in(monitor, "cellLabel"), items_out(monitor, "cell"));
    assert_eq!(
        items_in(monitor, "publish.events.out"),
        items_out(monitor, "cellLabel")
    );
    assert_eq!(
        items_out(aggregator, "subscribe.events.out"),
        items_in(monitor, "publish.events.out"),
        "events cross the event connector losslessly"
    );
    assert_eq!(
        items_in(aggregator, "out"),
        items_out(aggregator, "subscribe.events.out")
    );
    assert_eq!(items_in(aggregator, "expert"), items_out(aggregator, "out"));
    assert_eq!(
        items_in(aggregator, "expert"),
        stored,
        "every delivered report was drained and persisted"
    );

    // The same flow, read from the Prometheus dump an operator sees.
    let text = strata.metrics_text();
    assert_eq!(
        metric_value(
            &text,
            "spe_node_items_in_total{node=\"OT&pp\",query=\"thermal.monitor\"}"
        ),
        Some(items_in(monitor, "OT&pp"))
    );
    assert!(
        family_sum(&text, "pubsub_topic_bytes_in_total") > 0,
        "connector traffic is byte-accounted: {text}"
    );
    assert_eq!(
        family_sum(&text, "pubsub_topic_records_in_total"),
        family_sum(&text, "pubsub_topic_records_out_total"),
        "single-subscriber topics read exactly what was appended"
    );
    assert_eq!(
        metric_value(&text, "kv_put_ns_count"),
        Some(baseline_puts + stored),
        "the store counted one put per persisted report"
    );

    // And the whole dump is reachable over the wire.
    let mut server = BrokerServer::bind("127.0.0.1:0", strata.broker().clone()).unwrap();
    let mut client = BrokerClient::connect(server.local_addr().to_string()).unwrap();
    let remote = client.metrics_text().unwrap();
    assert!(remote.contains("spe_node_items_in_total"), "spe metrics");
    assert!(remote.contains("pubsub_topic_records_in_total"), "pubsub");
    assert!(remote.contains("kv_put_ns_count"), "kv metrics");
    assert!(remote.contains("net_connections_total 1"), "net metrics");
    assert!(remote.contains("# TYPE net_request_ns histogram"), "net");
    server.shutdown();
}

/// Renders a report as the canonical persisted form: event-time
/// metadata plus the payload in key order. Wall-clock fields
/// (`ingest_ns`, `latency`, `qos_met`) are excluded — they vary run to
/// run by construction; everything else must not.
fn canonical_report(report: &ExpertReport) -> String {
    let m = report.tuple.metadata();
    let mut line = format!(
        "ts={} job={} layer={} specimen={:?} portion={:?}",
        m.timestamp.as_millis(),
        m.job,
        m.layer,
        m.specimen,
        m.portion
    );
    for (key, value) in report.tuple.payload().iter() {
        let rendered = match value {
            // Images would dump megabytes under Debug; a dimension
            // plus pixel checksum pins them just as hard.
            Value::Image(img) => {
                let sum: u64 = img.pixels().iter().fold(0u64, |acc, &px| {
                    acc.wrapping_mul(131).wrapping_add(px as u64)
                });
                format!("image({}x{}#{sum})", img.width(), img.height())
            }
            other => format!("{other:?}"),
        };
        line.push_str(&format!(" {key}={rendered}"));
    }
    line
}

/// Runs the full thermal pipeline (amsim → pubsub → spe → kv) against
/// the seeded machine and returns the canonically persisted report
/// set, sorted so run-order differences in delivery cannot mask or
/// fake content differences.
fn run_thermal_reports(config: StrataConfig, seed: u32) -> Vec<String> {
    let strata = Strata::new(config).unwrap();
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        small_machine(seed),
        ThermalPipelineOptions {
            cell_px: 4,
            depth_l: 10,
            layers: 0..8,
            ..ThermalPipelineOptions::default()
        },
    )
    .unwrap();
    let mut persisted = Vec::new();
    while let Ok(report) = reports.recv_timeout(Duration::from_secs(120)) {
        persisted.push(canonical_report(&report));
    }
    running.join().unwrap();
    persisted.sort();
    persisted
}

/// The paper's pipeline is a deterministic function of the build data:
/// same seed, same reports — run to run, batched and unbatched, and
/// with the connector broker in-process or across TCP. This is the
/// end-to-end guarantee the batch-equivalence suite pins at the
/// operator level.
#[test]
fn same_seed_yields_identical_reports_everywhere() {
    const SEED: u32 = 9;
    let batched = run_thermal_reports(StrataConfig::default(), SEED);
    assert!(!batched.is_empty(), "the pipeline delivered reports");

    let again = run_thermal_reports(StrataConfig::default(), SEED);
    assert_eq!(batched, again, "two batched runs diverged");

    let unbatched = run_thermal_reports(StrataConfig::default().batch_size(1), SEED);
    assert_eq!(batched, unbatched, "batching changed the results");

    let remote_broker = Strata::new(StrataConfig::default()).unwrap();
    let mut server = BrokerServer::bind("127.0.0.1:0", remote_broker.broker().clone()).unwrap();
    let addr = server.local_addr().to_string();
    let remote = run_thermal_reports(
        StrataConfig::default().connector_mode(ConnectorMode::Remote { addr }),
        SEED,
    );
    server.shutdown();
    assert_eq!(batched, remote, "the TCP connector changed the results");
}

/// The set of exposed metric families is part of the public surface:
/// dashboards and alerts key on these names. Golden-checked against
/// `tests/golden/metrics_types.txt`; regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test end_to_end` (then rerun, since
/// the expectation is compiled in).
#[test]
fn metric_families_match_the_golden_file() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut server = BrokerServer::bind("127.0.0.1:0", strata.broker().clone()).unwrap();
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        small_machine(22),
        ThermalPipelineOptions {
            cell_px: 10,
            depth_l: 2,
            layers: 0..2,
            ..ThermalPipelineOptions::default()
        },
    )
    .unwrap();
    while reports.recv_timeout(Duration::from_secs(120)).is_ok() {}
    running.join().unwrap();

    let types: String = strata
        .metrics_text()
        .lines()
        .filter(|line| line.starts_with("# TYPE "))
        .fold(String::new(), |mut acc, line| {
            acc.push_str(line);
            acc.push('\n');
            acc
        });
    server.shutdown();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/metrics_types.txt"
            ),
            &types,
        )
        .unwrap();
    }
    assert_eq!(
        types,
        include_str!("golden/metrics_types.txt"),
        "exposed metric families changed; rerun with UPDATE_GOLDEN=1 if intended"
    );
}
