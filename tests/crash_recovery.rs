//! Crash-safety under deterministic fault injection (`strata-chaos`).
//!
//! Kill-and-reopen loops over the durable substrates: the kv WAL is
//! torn mid-append and power-lossed, pub/sub segment appends are torn,
//! the committed-offset store loses its fsync, and a broker server's
//! connections are severed at exact byte boundaries. In every case the
//! invariants are the same — no acknowledged write is lost, stores
//! always reopen, and a remote consumer resumes exactly-once.
//!
//! All scenarios are driven by seeded triggers: the same chaos seed
//! replays the same faults, so failures here reproduce byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::io::ErrorKind;
use std::time::Duration;

use strata_chaos::{fired, simulate_crash, Fault, Scenario};
use strata_kv::{Db, DbOptions, SyncPolicy as KvSync};
use strata_net::{BrokerServer, RemoteConsumer, RemoteProducer};
use strata_pubsub::log::{FileLog, PartitionLog};
use strata_pubsub::{
    segment_tails_truncated, Broker, LogKind, Record, SyncPolicy as PubSync, TopicConfig,
};

/// Fixed seed for probabilistic triggers: same seed, same fault
/// schedule, same test outcome.
const CHAOS_SEED: u64 = 0x57247A;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("strata-crash-{tag}-{}", std::process::id()))
}

/// Kill-and-reopen loop on the kv store: appends are torn at seeded
/// random points, every crash is followed by a power loss (unsynced
/// bytes vanish), and after each reopen every acknowledged put must
/// still be readable. `SyncPolicy::Always` means acked == durable.
#[test]
fn kv_acked_writes_survive_torn_wal_crash_loops() {
    if !strata_chaos::is_compiled() {
        return;
    }
    let dir = temp_dir("kv-loop");
    let _ = std::fs::remove_dir_all(&dir);
    let options = || DbOptions::default().sync_policy(KvSync::Always);

    let s = Scenario::setup();
    s.fail_with_probability(
        "kv.wal.write",
        0.08,
        CHAOS_SEED,
        Fault::Torn {
            keep: 7,
            kind: ErrorKind::Other,
        },
    );

    let mut acked: BTreeMap<String, String> = BTreeMap::new();
    let mut seq = 0u32;
    for round in 0..6 {
        let db = Db::open(&dir, options())
            .unwrap_or_else(|e| panic!("store must reopen after crash {round}: {e}"));
        for (k, v) in &acked {
            assert_eq!(
                db.get(k).unwrap().as_deref(),
                Some(v.as_bytes()),
                "acked key {k} lost in round {round}"
            );
        }
        for _ in 0..40 {
            let k = format!("key-{seq:05}");
            let v = format!("val-{seq:05}");
            seq += 1;
            match db.put(&k, &v) {
                Ok(()) => {
                    acked.insert(k, v);
                }
                // The torn write "kills the process" mid-append.
                Err(_) => break,
            }
        }
        drop(db);
        // Power loss: whatever was never fsynced is gone.
        simulate_crash(&dir.join("wal.log")).unwrap();
    }
    assert!(
        fired("kv.wal.write") >= 1,
        "the seeded fault schedule should tear at least one append"
    );
    drop(s); // Disarm; verify once more with chaos off.

    let db = Db::open(&dir, options()).expect("final reopen");
    assert!(!acked.is_empty());
    for (k, v) in &acked {
        assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_bytes()));
    }
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A torn segment append (partial frame on disk, never acked) must
/// not keep the partition log from reopening: the torn tail is
/// truncated, the failed record is absent, and appends continue at
/// the next offset.
#[test]
fn pubsub_torn_segment_append_recovers_on_reopen() {
    if !strata_chaos::is_compiled() {
        return;
    }
    let dir = temp_dir("pubsub-segment");
    let _ = std::fs::remove_dir_all(&dir);
    let s = Scenario::setup();
    let truncations_before = segment_tails_truncated();
    {
        let mut log = FileLog::open(&dir, 1 << 20, PubSync::Always).unwrap();
        for i in 0..5u8 {
            log.append(Record::new(None::<Vec<u8>>, vec![i])).unwrap();
        }
        s.fail_nth(
            "pubsub.segment.write",
            1,
            Fault::Torn {
                keep: 9,
                kind: ErrorKind::Other,
            },
        );
        assert!(
            log.append(Record::new(None::<Vec<u8>>, vec![5u8])).is_err(),
            "the torn append must not ack"
        );
    } // Crash with a partial frame at the tail.

    let mut log = FileLog::open(&dir, 1 << 20, PubSync::Always).expect("log reopens");
    assert_eq!(log.end_offset(), 5, "only acked records survive");
    assert_eq!(
        segment_tails_truncated() - truncations_before,
        1,
        "recovery counter reflects the truncated tail"
    );
    assert_eq!(
        log.append(Record::new(None::<Vec<u8>>, vec![9u8])).unwrap(),
        5,
        "appends continue at the next offset after recovery"
    );
    let records = log.read_from(0, usize::MAX).unwrap();
    assert_eq!(records.len(), 6);
    assert_eq!(records[5].record.value.as_ref(), &[9u8]);
    drop(log);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A failed fsync on the committed-offset store must fail the commit
/// (not silently ack it), and a subsequent power loss must leave
/// exactly the acknowledged commits behind.
#[test]
fn broker_offset_commits_honor_sync_failures_across_power_loss() {
    if !strata_chaos::is_compiled() {
        return;
    }
    let dir = temp_dir("offsets");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("offsets.log");
    let s = Scenario::setup();
    {
        let broker = Broker::with_offset_store(&path, PubSync::Always).unwrap();
        broker.create_topic("t", TopicConfig::new(1)).unwrap();
        broker.commit_offset("g", "t", 0, 4).unwrap();
        s.fail("pubsub.offsets.sync", Fault::Io(ErrorKind::Other));
        assert!(
            broker.commit_offset("g", "t", 0, 9).is_err(),
            "a commit whose fsync failed must not ack"
        );
        assert_eq!(
            broker.committed_offset("g", "t", 0),
            Some(4),
            "the in-memory view must not run ahead of durability"
        );
        s.clear("pubsub.offsets.sync");
    }
    simulate_crash(&path).unwrap();
    let broker = Broker::with_offset_store(&path, PubSync::Always).expect("broker reopens");
    assert_eq!(
        broker.committed_offset("g", "t", 0),
        Some(4),
        "exactly the acked commit survives the power loss"
    );
    drop(broker);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// End to end: a file-backed broker with durable group offsets serves
/// a remote consumer whose connection is severed mid-response; the
/// server is then shut down and rebuilt from disk. The consumer side
/// (reconnect + a successor in the same group) must see every record
/// exactly once.
#[test]
fn remote_consumer_resumes_exactly_once_across_sever_and_restart() {
    if !strata_chaos::is_compiled() {
        return;
    }
    const RECORDS: u64 = 60;
    let dir = temp_dir("net-resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let s = Scenario::setup();

    let open_broker = || {
        let broker = Broker::with_offset_store(dir.join("offsets.log"), PubSync::Always)
            .expect("broker reopens from its offset store");
        broker
            .create_topic(
                "t",
                TopicConfig::new(2).with_log(LogKind::File {
                    dir: dir.join("log"),
                    segment_bytes: 4096,
                    sync: PubSync::Always,
                }),
            )
            .expect("file-backed topic reopens from its segments");
        broker
    };

    // Phase 1: produce everything over a clean connection.
    let mut server = BrokerServer::bind("127.0.0.1:0", open_broker()).unwrap();
    let addr = server.local_addr().to_string();
    {
        let mut producer = RemoteProducer::connect(&addr).unwrap();
        for seq in 0..RECORDS {
            let key = format!("m-{}", seq % 5);
            producer
                .send("t", Some(key.as_bytes()), seq.to_le_bytes().to_vec())
                .unwrap();
        }
    }

    // Phase 2: consume about half, with one response severed at an
    // exact byte boundary. Committing after every delivered batch
    // makes "delivered" and "committed" coincide, so the reconnect
    // (and phase 3's successor) must never re-deliver.
    let mut seen: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    {
        let mut consumer = RemoteConsumer::connect(&addr, "g", &["t"]).unwrap();
        consumer.set_max_poll_records(8);
        s.fail_nth("net.server.send", 4, Fault::Sever { after: 5 });
        let mut delivered = 0u64;
        let mut attempts = 0;
        while delivered < RECORDS / 2 {
            attempts += 1;
            assert!(attempts < 500, "consumer made no progress");
            let batch = match consumer.poll(Duration::from_millis(200)) {
                Ok(batch) => batch,
                Err(_) => continue, // Severed mid-exchange; client reconnects.
            };
            for r in &batch {
                let seq = u64::from_le_bytes(r.record.value.as_ref().try_into().unwrap());
                let prev = seen.insert((r.partition, r.offset), seq);
                assert!(
                    prev.is_none(),
                    "slot ({}, {}) re-delivered",
                    r.partition,
                    r.offset
                );
                delivered += 1;
            }
            let mut commit_tries = 0;
            while consumer.commit().is_err() {
                commit_tries += 1;
                assert!(commit_tries < 100, "commit never succeeded");
            }
        }
        assert_eq!(fired("net.server.send"), 1, "the sever fired exactly once");
    }

    // Phase 3: broker restart — rebuild server, broker, topic and
    // group state from disk; a successor consumer in the same group
    // resumes from the committed offsets.
    server.shutdown();
    drop(server);
    let _server = BrokerServer::bind("127.0.0.1:0", open_broker()).unwrap();
    let addr = _server.local_addr().to_string();
    let mut consumer = RemoteConsumer::connect(&addr, "g", &["t"]).unwrap();
    consumer.set_max_poll_records(64);
    let mut idle = 0;
    while seen.len() < RECORDS as usize && idle < 100 {
        let batch = consumer.poll(Duration::from_millis(100)).unwrap();
        if batch.is_empty() {
            idle += 1;
            continue;
        }
        for r in &batch {
            let seq = u64::from_le_bytes(r.record.value.as_ref().try_into().unwrap());
            let prev = seen.insert((r.partition, r.offset), seq);
            assert!(
                prev.is_none(),
                "committed slot ({}, {}) re-delivered after restart",
                r.partition,
                r.offset
            );
        }
        consumer.commit().unwrap();
    }
    assert_eq!(seen.len(), RECORDS as usize, "every record delivered");
    let seqs: BTreeSet<u64> = seen.values().copied().collect();
    assert_eq!(
        seqs.len(),
        RECORDS as usize,
        "every sequence number seen exactly once"
    );
    drop(consumer);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}
