//! Reprocessing a historic printing job as fast as possible — the
//! paper's third experiment setting: "input data is replayed as fast
//! as possible", estimating how quickly past jobs can be reanalyzed
//! (e.g. after improving the thresholds in the key-value store).
//!
//! Demonstrates two STRATA capabilities:
//! 1. the key-value store carries knowledge *between* jobs (the
//!    thresholds survive in a persistent store directory);
//! 2. the same Algorithm-1 pipeline runs on replayed data at maximum
//!    rate, with the achieved throughput reported.
//!
//! ```sh
//! cargo run --release --example historical_replay
//! ```

use std::sync::Arc;

use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kv_dir = std::env::temp_dir().join("strata-replay-kv");
    let _ = std::fs::remove_dir_all(&kv_dir);

    // ── Job 1: the "historic" run; its thresholds persist on disk. ──
    {
        let strata = Strata::new(StrataConfig::default().kv_dir(&kv_dir))?;
        thermal::seed_thresholds(
            &strata,
            thermal::reference_thresholds(&strata_amsim::ThermalModel::default()),
        )?;
        println!("historic job processed; thresholds persisted to {kv_dir:?}");
    }

    // ── Job 2: replay through a fresh STRATA instance. ──
    let strata = Strata::new(StrataConfig::default().kv_dir(&kv_dir))?;
    let loaded = thermal::load_thresholds(&strata)?;
    println!(
        "thresholds recovered from the store: very_cold<{:.0} very_warm>{:.0}",
        loaded.pixel_very_cold, loaded.pixel_very_warm
    );

    let layers = 40u32;
    let machine = Arc::new(PbfLbMachine::new(
        MachineConfig::paper_build(7)
            .image_px(800)
            .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
            .defect_rate(1.5),
    )?);

    let started = std::time::Instant::now();
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        machine,
        ThermalPipelineOptions {
            cell_px: 8,
            depth_l: 20,
            layers: 0..layers,
            pace: 0.0,
            parallelism: 2,
            render_images: false,
            offered_rate: Some(0.0), // replay mode, as fast as possible
            stable_ids: false,
        },
    )?;

    let mut summaries = 0usize;
    let mut events = 0i64;
    while summaries < layers as usize - 1 {
        match reports.recv_timeout(std::time::Duration::from_secs(60)) {
            Ok(report) => {
                if report.tuple.payload().str("report") == Some("summary") {
                    summaries += 1;
                    events += report.tuple.payload().int("event_count").unwrap_or(0);
                }
            }
            Err(_) => break,
        }
    }
    running.shutdown()?;

    let elapsed = started.elapsed();
    println!(
        "replayed {layers} layers in {elapsed:.2?} → {:.1} images/s ({} window evaluations, {events} events)",
        layers as f64 / elapsed.as_secs_f64(),
        summaries,
    );
    Ok(())
}
