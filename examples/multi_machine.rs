//! Monitoring a manufacturing facility: several PBF-LB machines in
//! parallel — and genuinely multi-process. The parent spawns one
//! broker-server process (a `strata-net` TCP broker on loopback) and
//! one process per machine; each machine process runs the full
//! thermal pipeline with its connector topics on the shared remote
//! broker, the deployment the paper sketches (§3 requirement 3:
//! high-throughput facility monitoring; connectors in a shared
//! broker cluster, modules on separate machines).
//!
//! ```sh
//! cargo run --release --example multi_machine
//! ```
//!
//! The binary re-invokes itself for the worker roles:
//!
//! ```text
//! multi_machine                  # orchestrator (default)
//! multi_machine server           # broker server, prints LISTENING <addr>
//! multi_machine machine <j> <a>  # machine j's pipeline against broker at a
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{ConnectorMode, Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};
use strata_net::BrokerServer;
use strata_pubsub::Broker;

const MACHINES: u32 = 4;
const LAYERS: u32 = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("server") => run_server(),
        Some("machine") => {
            let job: u32 = args
                .get(2)
                .ok_or("usage: multi_machine machine <job> <addr>")?
                .parse()?;
            let addr = args
                .get(3)
                .ok_or("usage: multi_machine machine <job> <addr>")?;
            run_machine(job, addr)
        }
        _ => run_orchestrator(),
    }
}

/// Broker-server role: bind an ephemeral loopback port, announce it,
/// serve until the orchestrator closes our stdin.
fn run_server() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = BrokerServer::bind("127.0.0.1:0", Broker::new())?;
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush()?;
    let mut sink = Vec::new();
    std::io::stdin().read_to_end(&mut sink)?; // Blocks until EOF.
    server.shutdown();
    Ok(())
}

/// Machine role: one simulated machine, one thermal pipeline whose
/// Raw Data Connector and Event Connector live on the remote broker.
fn run_machine(job: u32, addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let machine = Arc::new(PbfLbMachine::new(
        MachineConfig::paper_build(job)
            .image_px(800)
            .timing(100, 20)
            // Start scanning parallel to the gas flow: the first
            // stack is the defect-prone one, so even a 12-layer
            // demo has something to find.
            .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
            .defect_rate(1.5),
    )?);
    let strata = Strata::new(
        StrataConfig::default().connector_mode(ConnectorMode::Remote {
            addr: addr.to_string(),
        }),
    )?;
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        machine,
        ThermalPipelineOptions {
            cell_px: 8,
            depth_l: 10,
            layers: 0..LAYERS,
            pace: 0.0, // every machine streams as fast as it prints
            parallelism: 1,
            render_images: false,
            offered_rate: None,
            stable_ids: false,
        },
    )?;

    let mut summaries = 0usize;
    let mut clusters = 0usize;
    let mut max_latency = Duration::ZERO;
    while summaries < (LAYERS as usize).saturating_sub(1) {
        match reports.recv_timeout(Duration::from_secs(60)) {
            Ok(report) => {
                max_latency = max_latency.max(report.latency);
                match report.tuple.payload().str("report") {
                    Some("summary") => summaries += 1,
                    Some("cluster") => clusters += 1,
                    _ => {}
                }
            }
            Err(_) => break,
        }
    }
    running.shutdown()?;
    println!(
        "RESULT job={job} summaries={summaries} clusters={clusters} max_latency_ms={}",
        max_latency.as_millis()
    );
    Ok(())
}

/// Orchestrator role: spawn the broker server, then the machines,
/// collect their results, then retire the server.
fn run_orchestrator() -> Result<(), Box<dyn std::error::Error>> {
    let exe = std::env::current_exe()?;
    let started = Instant::now();

    let mut server = Command::new(&exe)
        .arg("server")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let mut server_out = BufReader::new(server.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    server_out.read_line(&mut line)?;
    let addr = line
        .strip_prefix("LISTENING ")
        .ok_or("broker server failed to announce its address")?
        .trim()
        .to_string();
    println!("broker server: pid {} on {addr}", server.id());

    let children: Vec<(u32, std::process::Child)> = (0..MACHINES)
        .map(|job| {
            let child = Command::new(&exe)
                .arg("machine")
                .arg(job.to_string())
                .arg(&addr)
                .stdout(Stdio::piped())
                .spawn()?;
            println!("machine {job}: pid {}", child.id());
            Ok((job, child))
        })
        .collect::<std::io::Result<_>>()?;

    let mut total_clusters = 0u64;
    let mut max_latency_ms = 0u64;
    let mut failures = 0usize;
    for (job, child) in children {
        let output = child.wait_with_output()?;
        let stdout = String::from_utf8_lossy(&output.stdout);
        let result = stdout.lines().find(|l| l.starts_with("RESULT "));
        match result {
            Some(result) if output.status.success() => {
                let field = |key: &str| -> u64 {
                    result
                        .split_whitespace()
                        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0)
                };
                println!(
                    "machine {job}: {} windows, {} cluster reports, max latency {} ms",
                    field("summaries"),
                    field("clusters"),
                    field("max_latency_ms"),
                );
                total_clusters += field("clusters");
                max_latency_ms = max_latency_ms.max(field("max_latency_ms"));
            }
            _ => {
                failures += 1;
                eprintln!("machine {job} failed: {:?}\n{stdout}", output.status);
            }
        }
    }

    drop(server.stdin.take()); // EOF: the server shuts down.
    server.wait()?;

    println!(
        "\n{MACHINES} machines × {LAYERS} layers across {} processes in {:.2?} — \
         {total_clusters} cluster reports, max latency {max_latency_ms} ms",
        MACHINES + 2,
        started.elapsed(),
    );
    if failures > 0 {
        return Err(format!("{failures} machine process(es) failed").into());
    }
    Ok(())
}
