//! Monitoring a manufacturing facility: several PBF-LB machines in
//! parallel, one pipeline each, sharing the STRATA instance (broker +
//! key-value store) — the scenario motivating the paper's
//! high-throughput requirement (§3, requirement 3).
//!
//! ```sh
//! cargo run --release --example multi_machine
//! ```

use std::sync::Arc;

use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MACHINES: u32 = 4;
    const LAYERS: u32 = 12;

    let strata = Strata::new(StrataConfig::default())?;
    let started = std::time::Instant::now();

    // One pipeline per machine; all share the broker and the store.
    let mut deployments = Vec::new();
    for job in 0..MACHINES {
        let machine = Arc::new(PbfLbMachine::new(
            MachineConfig::paper_build(job)
                .image_px(800)
                .timing(100, 20)
                // Start scanning parallel to the gas flow: the first
                // stack is the defect-prone one, so even a 12-layer
                // demo has something to find.
                .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
                .defect_rate(1.5),
        )?);
        let (running, reports) = thermal::deploy_pipeline(
            &strata,
            machine,
            ThermalPipelineOptions {
                cell_px: 8,
                depth_l: 10,
                layers: 0..LAYERS,
                pace: 0.0, // every machine streams as fast as it prints
                parallelism: 1,
                render_images: false,
                offered_rate: None,
                stable_ids: false,
            },
        )?;
        deployments.push((job, running, reports));
    }

    // Collect per-machine outcomes on this thread.
    let mut total_clusters = 0usize;
    let mut max_latency = std::time::Duration::ZERO;
    for (job, running, reports) in deployments {
        let mut summaries = 0;
        let mut clusters = 0;
        while summaries < (LAYERS as usize).saturating_sub(1) {
            match reports.recv_timeout(std::time::Duration::from_secs(60)) {
                Ok(report) => {
                    max_latency = max_latency.max(report.latency);
                    match report.tuple.payload().str("report") {
                        Some("summary") => summaries += 1,
                        Some("cluster") => clusters += 1,
                        _ => {}
                    }
                }
                Err(_) => break,
            }
        }
        running.shutdown()?;
        println!("machine {job}: {summaries} windows, {clusters} cluster reports");
        total_clusters += clusters;
    }

    println!(
        "\n{MACHINES} machines × {LAYERS} layers in {:.2?} — {total_clusters} cluster reports, max latency {:.2?}",
        started.elapsed(),
        max_latency,
    );
    Ok(())
}
