//! The paper's real-world use-case (§5, Algorithm 1): detect
//! specimen portions melted with too-low or too-high thermal energy
//! and cluster them within and across layers with DBSCAN.
//!
//! Prints per-layer cluster reports as the (simulated) print runs,
//! checks the 3-second QoS threshold of the paper, and writes the
//! cluster image of the last window to `target/thermal_clusters.pgm`
//! (Figure 4's right panel).
//!
//! ```sh
//! cargo run --release --example thermal_monitoring
//! ```

use std::sync::Arc;

use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Arc::new(PbfLbMachine::new(
        MachineConfig::paper_build(42)
            .image_px(1000)
            .timing(300, 50) // compressed melt/recoat so the demo finishes quickly
            .defect_rate(1.5),
    )?);
    println!(
        "printing job {}: {} layers, {} specimens, {} seeded defect sites",
        machine.job(),
        machine.layer_count(),
        machine.plan().specimens().len(),
        machine.defects().len(),
    );

    let strata = Strata::new(StrataConfig::default())?;
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        Arc::clone(&machine),
        ThermalPipelineOptions {
            cell_px: 10,
            depth_l: 20,
            layers: 0..30,
            pace: 1.0, // live pacing against the machine's clock
            parallelism: 2,
            render_images: true,
            offered_rate: None,
            stable_ids: false,
        },
    )?;

    let mut dashboard = strata::Dashboard::new();
    let mut last_image = None;
    let mut qos_violations = 0;
    let mut summaries = 0;
    while let Ok(report) = reports.recv_timeout(std::time::Duration::from_secs(60)) {
        dashboard.observe(&report);
        let t = &report.tuple;
        match t.payload().str("report") {
            Some("cluster") => {
                println!(
                    "  layer {:>3} specimen {:>2} cluster {:>2}: {:>4} cells at ({:>5.1}, {:>5.1}) mm, depth {:.2} mm ({} hot)",
                    t.metadata().layer,
                    t.metadata().specimen.unwrap_or(0),
                    t.payload().int("cluster_id").unwrap_or(-1),
                    t.payload().int("size").unwrap_or(0),
                    t.payload().float("centroid_x_mm").unwrap_or(0.0),
                    t.payload().float("centroid_y_mm").unwrap_or(0.0),
                    t.payload().float("depth_mm").unwrap_or(0.0),
                    t.payload().int("hot_members").unwrap_or(0),
                );
            }
            Some("summary") => {
                summaries += 1;
                if !report.qos_met {
                    qos_violations += 1;
                }
                if let Some(image) = t.payload().image("clusters_image") {
                    last_image = Some(Arc::clone(image));
                }
                println!(
                    "layer {:>3} specimen {:>2}: {} cluster(s) from {} events  latency={:>8.2?} qos_met={}",
                    t.metadata().layer,
                    t.metadata().specimen.unwrap_or(0),
                    t.payload().int("cluster_count").unwrap_or(0),
                    t.payload().int("event_count").unwrap_or(0),
                    report.latency,
                    report.qos_met,
                );
            }
            _ => {}
        }
        if summaries >= 60 {
            break;
        }
    }

    running.shutdown()?;
    println!("\nbuild status board:\n{}", dashboard.render());
    println!(
        "{summaries} windows evaluated, {qos_violations} QoS violations (threshold {:?})",
        strata.config().qos_threshold()
    );
    if let Some(image) = last_image {
        std::fs::create_dir_all("target")?;
        image.write_pgm("target/thermal_clusters.pgm")?;
        println!("cluster image written to target/thermal_clusters.pgm");
        println!("{}", image.to_ascii(60));
    }
    Ok(())
}
