//! Closing the loop (paper §1: "eventually enabling feedback loop
//! control"): a decision policy watches the thermal-monitoring
//! pipeline and *terminates the printing job* when a defect cluster
//! grows beyond tolerance — exactly the
//! continue / re-adjust / terminate choice of Figure 1B, automated.
//!
//! ```sh
//! cargo run --release --example feedback_loop
//! ```

use std::sync::Arc;

use strata::expert::{Decision, DecisionPolicy};
use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A job doomed to develop a large defect: dense seeding on the
    // gas-parallel orientation.
    let machine = Arc::new(PbfLbMachine::new(
        MachineConfig::paper_build(66)
            .image_px(800)
            .timing(120, 25)
            .schedule(strata_amsim::scan::ScanSchedule::new(90.0, 67.0))
            .defect_rate(3.0),
    )?);

    let strata = Strata::new(StrataConfig::default())?;
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        Arc::clone(&machine),
        ThermalPipelineOptions {
            cell_px: 8,
            depth_l: 30,
            layers: 0..machine.layer_count(), // the whole job — unless we stop it
            pace: 1.0,
            ..ThermalPipelineOptions::default()
        },
    )?;

    // The expert's "script/tool" (§3): adjust at 60 cells, abort at
    // 150 cells or a defect deeper than 0.8 mm.
    let mut monitor = DecisionPolicy::new()
        .adjust_on_cluster_size(60)
        .terminate_on_cluster_size(150)
        .terminate_on_cluster_depth_mm(0.8)
        .terminate_on_qos_misses(3)
        .into_monitor();

    let started = std::time::Instant::now();
    let mut outcome = Decision::Continue;
    while let Ok(report) = reports.recv_timeout(std::time::Duration::from_secs(60)) {
        match monitor.observe(&report) {
            Decision::Continue => {}
            Decision::Adjust => {
                let v = monitor.violations().last().unwrap();
                println!(
                    "layer {:>3}: ADJUST requested ({}) — e.g. raise laser power on specimen {:?}",
                    v.layer, v.rule, v.specimen
                );
            }
            Decision::Terminate => {
                let v = monitor.violations().last().unwrap();
                println!(
                    "layer {:>3}: TERMINATE ({}) on specimen {:?} — aborting the job",
                    v.layer, v.rule, v.specimen
                );
                outcome = Decision::Terminate;
                break;
            }
        }
    }

    // Feedback: stop the machine's pipeline (in a real deployment,
    // also the machine itself).
    running.shutdown()?;
    let layers_total = machine.layer_count();
    println!(
        "\noutcome: {outcome:?} after {:.1?}; job had {layers_total} layers — \
         aborting early saved the remaining material and machine time",
        started.elapsed(),
    );
    println!(
        "policy log: {} violations, {} QoS misses",
        monitor.violations().len(),
        monitor.qos_misses()
    );
    Ok(())
}
