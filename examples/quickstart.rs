//! Quickstart: the smallest useful STRATA pipeline.
//!
//! Simulates a few layers of a PBF-LB print, watches the OT images
//! for unusually bright pixels, and prints one line per layer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use strata::collector::OtImageCollector;
use strata::{AmTuple, Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated EOS M290-style machine: the paper's 12-specimen
    // build, rendered at 500×500 px to keep the example snappy.
    let machine = Arc::new(PbfLbMachine::new(
        MachineConfig::paper_build(1).image_px(500).timing(200, 30),
    )?);

    let strata = Strata::new(StrataConfig::default())?;
    let mut pipeline = strata.pipeline("quickstart");

    // Raw Data Collector: one OT image per layer.
    let ot = pipeline.add_source(
        "ot",
        OtImageCollector::new(Arc::clone(&machine)).layers(0..10),
    );

    // Event Monitor: count unusually hot pixels per layer.
    let events = pipeline.detect_event("bright", &ot, |tuple: &AmTuple| {
        let image = tuple.payload().image("image")?;
        let bright = image.pixels().iter().filter(|&&p| p > 160).count();
        let mut out = tuple.derive();
        out.payload_mut().set_int("bright_pixels", bright as i64);
        Some(vec![out])
    });

    // Deliver to the expert (this process).
    let reports = pipeline.deliver("expert", &events);
    let running = pipeline.deploy()?;

    for _ in 0..10 {
        let report = reports.recv_timeout(std::time::Duration::from_secs(30))?;
        println!(
            "layer {:>3}  bright_pixels={:>6}  latency={:>7.2?}  qos_met={}",
            report.tuple.metadata().layer,
            report.tuple.payload().int("bright_pixels").unwrap_or(0),
            report.latency,
            report.qos_met,
        );
    }

    running.shutdown()?;
    println!("done: 10 layers monitored");
    Ok(())
}
