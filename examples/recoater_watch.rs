//! Watching for recoater faults — a second use-case from the paper's
//! future-work list ("the type of monitored defect"): detect powder
//! short-feed streaks and under-melted specimen footprints from the
//! same OT stream, in the same deployment as any other STRATA
//! pipeline.
//!
//! The simulated job carries an injected recoater streak from layer 5
//! onward; the pipeline localizes it in plate coordinates within the
//! layer's recoat gap.
//!
//! ```sh
//! cargo run --release --example recoater_watch
//! ```

use std::sync::Arc;

use strata::collector::{OtImageCollector, PrintingParameterCollector};
use strata::usecase::geometry::{footprint_monitor, streak_detector, GeometryOptions};
use strata::usecase::thermal::isolate_specimen;
use strata::{Strata, StrataConfig};
use strata_amsim::{MachineConfig, PbfLbMachine, RecoaterStreak};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A job with an injected recoater short-feed streak: a 6 mm band
    // at x = 130 mm that loses most of its powder from layer 5 on.
    let machine = Arc::new(PbfLbMachine::new(
        MachineConfig::paper_build(3)
            .image_px(800)
            .timing(150, 30)
            .defect_rate(0.2)
            .with_streak(RecoaterStreak {
                x_mm: 130.0,
                width_mm: 6.0,
                start_layer: 5,
                layer_span: 100,
                attenuation: 0.35,
            }),
    )?);
    println!(
        "ground truth: streak at x=130 mm, 6 mm wide, from layer 5 (job {})",
        machine.job()
    );

    let strata = Strata::new(StrataConfig::default())?;
    let mut pipeline = strata.pipeline("recoater-watch");
    let ot = pipeline.add_source(
        "OT",
        OtImageCollector::new(Arc::clone(&machine)).layers(0..10),
    );
    let pp = pipeline.add_source(
        "pp",
        PrintingParameterCollector::new(Arc::clone(&machine)).layers(0..10),
    );
    let fused = pipeline.fuse("OT&pp", &ot, &pp);

    // Detector 1: full-image streak profile.
    let plate = machine.plan().plate_mm();
    let streaks = pipeline.detect_event(
        "streaks",
        &fused,
        streak_detector(plate, GeometryOptions::default()),
    );

    // Detector 2: per-specimen melted-footprint check.
    let spec = pipeline.partition("spec", &fused, isolate_specimen(plate));
    let footprints = pipeline.detect_event(
        "footprints",
        &spec,
        footprint_monitor(GeometryOptions::default()),
    );

    let streak_rx = pipeline.deliver("streak-expert", &streaks);
    let footprint_rx = pipeline.deliver("footprint-expert", &footprints);
    let running = pipeline.deploy()?;

    let mut streak_layers = 0;
    while let Ok(report) = streak_rx.recv_timeout(std::time::Duration::from_secs(30)) {
        let t = &report.tuple;
        println!(
            "layer {:>2}: streak at x={:>6.1} mm, width {:>4.1} mm  (latency {:>8.2?}, qos_met={})",
            t.metadata().layer,
            t.payload().float("x_mm").unwrap_or(0.0),
            t.payload().float("width_mm").unwrap_or(0.0),
            report.latency,
            report.qos_met,
        );
        streak_layers += 1;
    }
    let mut footprint_events = 0;
    while footprint_rx
        .recv_timeout(std::time::Duration::from_millis(100))
        .is_ok()
    {
        footprint_events += 1;
    }
    running.shutdown()?;
    println!(
        "\n{streak_layers} streak reports (expected: layers 5-9), {footprint_events} under-melted footprint reports"
    );
    Ok(())
}
